// Multi-client download: the paper's motivating scenario (§4.3) — several
// WiFi clients downloading from a LAN server through one AP. Prints the
// per-client and aggregate goodput for stock 802.11n and TCP/HACK, plus the
// MAC-level collision evidence (response timeouts) HACK removes.
#include <cstdio>

#include "src/scenario/download_scenario.h"

using namespace hacksim;

int main(int argc, char** argv) {
  int n_clients = argc > 1 ? std::atoi(argv[1]) : 4;
  ScenarioConfig config;
  config.standard = WifiStandard::k80211n;
  config.data_rate_mbps = 150.0;
  config.n_clients = n_clients;
  config.duration = SimTime::Seconds(4);
  config.seed = 2026;

  for (HackVariant variant : {HackVariant::kOff, HackVariant::kMoreData}) {
    config.hack = variant;
    ScenarioResult r = RunScenario(config);
    std::printf("%s, %d clients:\n",
                variant == HackVariant::kOff ? "TCP/802.11n" : "TCP/HACK",
                n_clients);
    for (int i = 0; i < n_clients; ++i) {
      std::printf("  client %d: %6.1f Mbps steady\n", i + 1,
                  r.clients[i].steady_goodput_mbps);
    }
    std::printf("  aggregate: %6.1f Mbps, AP response timeouts "
                "(collisions): %llu, CRC failures: %llu\n\n",
                r.steady_aggregate_goodput_mbps,
                static_cast<unsigned long long>(r.ap_mac.response_timeouts),
                static_cast<unsigned long long>(r.crc_failures));
  }
  return 0;
}
